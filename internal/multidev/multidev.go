// Package multidev simulates a kernel on K compute devices with private
// L2 caches joined by an interconnect — the multi-tile accelerator shape
// (4/16/64-CU GPUs, chiplet CPUs) the paper's single flat L2 abstracts
// away. The matrix's rows are split across devices by a partitioner
// (internal/partition row blocks, METIS, or RABBIT communities); each
// device executes its rows' accesses against its own cachesim instance
// (the flat L2 capacity divided K ways — constant silicon), and every
// miss on a line homed on another device is classified as an
// inter-device transfer. The reported per-device traffic, remote-traffic
// fraction, and load imbalance answer the question the flat model
// cannot: does community reordering still help once the matrix is
// partitioned across executors?
//
// K = 1 is exactly the flat path: one simulator with the original
// geometry (cachesim.Config.Split(1) is the identity), every line local,
// and ProjectTime reducing to gpumodel.ProjectTime — pinned bit-identical
// by TestMultiDevFlatIdentity over the experiment corpus.
//
//repro:deterministic
package multidev

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/gpumodel"
	"repro/internal/trace"
)

// Config describes the simulated multi-device platform.
type Config struct {
	// Devices is the number of compute tiles K; each runs one private
	// cache. Must be positive.
	Devices int
	// L2 is the per-device private cache geometry (already split, e.g.
	// gpumodel.Device.PerDeviceL2 or cachesim.Config.Split).
	L2 cachesim.Config
	// Impl selects the cache implementation (fast or reference oracle).
	Impl cachesim.Impl
}

// ForDevice derives the multi-device simulation config from a modeled
// device: K tiles, each owning 1/K of the flat L2 capacity.
func ForDevice(d gpumodel.Device, impl cachesim.Impl) Config {
	return Config{Devices: d.NumDevices(), L2: d.PerDeviceL2(), Impl: impl}
}

// DeviceStats is one device's view of the run: its private-cache
// statistics plus the remote classification of its accesses.
type DeviceStats struct {
	cachesim.Stats
	// RemoteAccesses counts this device's accesses to lines homed on
	// another device (hit or miss).
	RemoteAccesses int64
	// RemoteMisses counts the remote accesses that missed the private
	// cache — each one an inter-device transfer of a full line.
	RemoteMisses int64
}

// RemoteTrafficBytes returns the bytes this device pulled over the
// interconnect from other devices' memory.
func (d DeviceStats) RemoteTrafficBytes() int64 { return d.RemoteMisses * d.LineBytes }

// LocalTrafficBytes returns the bytes this device filled from its own
// memory partition.
func (d DeviceStats) LocalTrafficBytes() int64 {
	return (d.Misses - d.RemoteMisses) * d.LineBytes
}

// Stats aggregates a multi-device simulation: one entry per device, in
// device order.
type Stats struct {
	// Devices holds each tile's statistics; len(Devices) == K.
	Devices []DeviceStats
}

// Flat folds the per-device statistics into a single cachesim.Stats, the
// view a flat-L2 analysis would take of the same run. At K=1 this is
// bit-identical to the flat simulation's Stats.
func (s Stats) Flat() cachesim.Stats {
	var out cachesim.Stats
	for _, d := range s.Devices {
		out.Accesses += d.Accesses
		out.Hits += d.Hits
		out.Misses += d.Misses
		out.Compulsory += d.Compulsory
		out.Evictions += d.Evictions
		out.DeadFills += d.DeadFills
		out.LineBytes = d.LineBytes
	}
	return out
}

// TotalTrafficBytes returns the DRAM traffic summed over devices.
func (s Stats) TotalTrafficBytes() int64 {
	var total int64
	for _, d := range s.Devices {
		total += d.TrafficBytes()
	}
	return total
}

// RemoteTrafficBytes returns the inter-device transfer volume summed
// over devices.
func (s Stats) RemoteTrafficBytes() int64 {
	var total int64
	for _, d := range s.Devices {
		total += d.RemoteTrafficBytes()
	}
	return total
}

// RemoteFraction returns the fraction of DRAM traffic that crossed the
// interconnect (0 for a traffic-free run) — the partition quality metric
// at cache-line granularity.
func (s Stats) RemoteFraction() float64 {
	total := s.TotalTrafficBytes()
	if total == 0 {
		return 0
	}
	return float64(s.RemoteTrafficBytes()) / float64(total)
}

// MaxDeviceTrafficBytes returns the busiest device's DRAM traffic.
func (s Stats) MaxDeviceTrafficBytes() int64 {
	var max int64
	for _, d := range s.Devices {
		if t := d.TrafficBytes(); t > max {
			max = t
		}
	}
	return max
}

// MeanDeviceTrafficBytes returns the average per-device DRAM traffic.
func (s Stats) MeanDeviceTrafficBytes() float64 {
	if len(s.Devices) == 0 {
		return 0
	}
	return float64(s.TotalTrafficBytes()) / float64(len(s.Devices))
}

// Imbalance returns max/mean per-device traffic — 1.0 is a perfect
// split, K is one device doing all the work. A traffic-free run reports
// 1.0 (trivially balanced).
func (s Stats) Imbalance() float64 {
	mean := s.MeanDeviceTrafficBytes()
	if mean == 0 {
		return 1
	}
	return float64(s.MaxDeviceTrafficBytes()) / mean
}

// Simulate runs the device-attributed trace against K private caches:
// each access goes to its executing device's cache, and a miss on a line
// homed elsewhere counts as an inter-device transfer. Device IDs outside
// [0, K) panic — owner vectors are produced by internal/partition, so a
// violation is a programming error.
func Simulate(cfg Config, ot trace.OwnedTrace) Stats {
	k := cfg.Devices
	if k <= 0 {
		panic(fmt.Sprintf("multidev: Simulate with %d devices", cfg.Devices))
	}
	sims := make([]cachesim.Simulator, k)
	for i := range sims {
		sims[i] = cachesim.NewSimulator(cfg.L2, cfg.Impl, 0)
	}
	out := Stats{Devices: make([]DeviceStats, k)}
	ot.Trace(func(dev int32, line int64) {
		hit := sims[dev].Access(line)
		if ot.Home[line] != dev {
			ds := &out.Devices[dev]
			ds.RemoteAccesses++
			if !hit {
				ds.RemoteMisses++
			}
		}
	})
	for i := range sims {
		out.Devices[i].Stats = sims[i].Finalize()
	}
	return out
}

// ProjectTime converts multi-device statistics into a projected kernel
// run time: each device moves its local traffic at its 1/K bandwidth
// share, pays d.RemotePenalty per remote byte (interconnect hops are
// slower than local DRAM), and is derated by its own miss fraction
// exactly as gpumodel.ProjectTime derates the flat device; the kernel
// finishes when the slowest device does. At K=1 with no remote lines
// this computes gpumodel.ProjectTime(d, s.Flat()) bit for bit.
func ProjectTime(d gpumodel.Device, s Stats) float64 {
	k := len(s.Devices)
	if k == 0 {
		return 0
	}
	bw := d.EffectiveBandwidth / float64(k)
	penalty := d.RemotePenalty
	if penalty <= 0 {
		penalty = 1
	}
	var worst float64
	for _, ds := range s.Devices {
		t := (float64(ds.LocalTrafficBytes()) + penalty*float64(ds.RemoteTrafficBytes())) / bw
		if ds.Accesses > 0 {
			missFraction := float64(ds.Misses) / float64(ds.Accesses)
			t = t * (1 + d.FineGrainPenalty*missFraction)
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// NormalizedRuntime returns the multi-device projected run time divided
// by the flat single-device ideal time — the Figure 3 metric extended
// with a device count axis. Values below 1.0 mean the K-way split beats
// the flat ideal (aggregate private caches plus partitioned bandwidth
// outrun one big L2); large values mean interconnect traffic or
// imbalance ate the parallelism.
func NormalizedRuntime(d gpumodel.Device, s Stats, k gpumodel.Kernel, n, nnz int64) float64 {
	return ProjectTime(d, s) / gpumodel.IdealTime(d, k, n, nnz)
}
