package multidev

import (
	"math"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func testConfig(k int) Config {
	flat := cachesim.Config{CapacityBytes: 64 << 10, LineBytes: 128, Ways: 16}
	return Config{Devices: k, L2: flat.Split(k), Impl: cachesim.ImplFast}
}

// TestSimulateFlatIdentityK1 pins the package-level contract: a K=1
// simulation is bit-identical (Stats equality) to the flat cachesim path
// over the same trace, with zero remote classification.
func TestSimulateFlatIdentityK1(t *testing.T) {
	flat := cachesim.Config{CapacityBytes: 64 << 10, LineBytes: 128, Ways: 16}
	for _, seed := range []uint64{1, 2, 3} {
		m := gen.PlantedPartition{Nodes: 600, Communities: 12, AvgDegree: 8, Mu: 0.3}.Generate(seed)
		owner := make([]int32, m.NumRows)
		ot := trace.SpMVCSROwned(m, owner, flat.LineBytes)
		want := cachesim.SimulateLRU(flat, trace.SpMVCSR(m, flat.LineBytes))
		got := Simulate(Config{Devices: 1, L2: flat.Split(1), Impl: cachesim.ImplFast}, ot)
		if len(got.Devices) != 1 {
			t.Fatalf("K=1 produced %d device entries", len(got.Devices))
		}
		if got.Devices[0].Stats != want {
			t.Fatalf("K=1 stats diverge from flat path:\n got %+v\nwant %+v", got.Devices[0].Stats, want)
		}
		if got.Devices[0].RemoteAccesses != 0 || got.Devices[0].RemoteMisses != 0 {
			t.Fatalf("K=1 classified remote traffic: %+v", got.Devices[0])
		}
		if got.Flat() != want {
			t.Fatalf("Flat() diverges: %+v vs %+v", got.Flat(), want)
		}
	}
}

// TestSimulateConservation checks the cross-device accounting: access and
// miss totals are conserved regardless of K, and remote counts never
// exceed their device's totals.
func TestSimulateConservation(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 500, AvgDegree: 10}.Generate(4)
	line := int64(128)
	var flatAccesses int64
	trace.SpMVCSR(m, line)(func(int64) { flatAccesses++ })
	for _, k := range []int{2, 4, 8} {
		owner := partition.RowBlocks(m.NumRows, int32(k))
		s := Simulate(testConfig(k), trace.SpMVCSROwned(m, owner, line))
		agg := s.Flat()
		if agg.Accesses != flatAccesses {
			t.Fatalf("K=%d: %d accesses across devices, trace has %d", k, agg.Accesses, flatAccesses)
		}
		if agg.Hits+agg.Misses != agg.Accesses {
			t.Fatalf("K=%d: hits+misses != accesses: %+v", k, agg)
		}
		for d, ds := range s.Devices {
			if ds.RemoteAccesses > ds.Accesses {
				t.Fatalf("K=%d dev %d: remote accesses %d > accesses %d", k, d, ds.RemoteAccesses, ds.Accesses)
			}
			if ds.RemoteMisses > ds.Misses || ds.RemoteMisses > ds.RemoteAccesses {
				t.Fatalf("K=%d dev %d: incoherent remote misses %+v", k, d, ds)
			}
		}
		if s.RemoteTrafficBytes() > s.TotalTrafficBytes() {
			t.Fatalf("K=%d: remote traffic exceeds total", k)
		}
		if s.Imbalance() < 1 {
			t.Fatalf("K=%d: imbalance %f < 1", k, s.Imbalance())
		}
	}
}

// TestRemoteClassification hand-checks the remote rule on a two-device
// split where device 1's only nonzero dereferences device 0's X.
func TestRemoteClassification(t *testing.T) {
	// 4 rows: rows 0-1 on device 0 reference only X[0..1]; rows 2-3 on
	// device 1, where row 2 references X[0] — device 0's data.
	coo := sparse.NewCOO(4, 4, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 0, 1)
	coo.Add(3, 3, 1)
	owner := []int32{0, 0, 1, 1}
	s := Simulate(testConfig(2), trace.SpMVCSROwned(coo.ToCSR(), owner, 128))
	if s.Devices[1].RemoteAccesses == 0 {
		t.Fatalf("device 1's X[0] dereference not classified remote: %+v", s.Devices)
	}
	if s.RemoteFraction() <= 0 || s.RemoteFraction() > 1 {
		t.Fatalf("remote fraction %f out of range", s.RemoteFraction())
	}
}

// TestProjectTimeFlatIdentity pins ProjectTime's K=1 reduction to
// gpumodel.ProjectTime.
func TestProjectTimeFlatIdentity(t *testing.T) {
	d := gpumodel.SimDeviceSmall()
	m := gen.PlantedPartition{Nodes: 400, Communities: 8, AvgDegree: 8, Mu: 0.3}.Generate(9)
	ot := trace.SpMVCSROwned(m, make([]int32, m.NumRows), d.L2.LineBytes)
	s := Simulate(ForDevice(d, cachesim.ImplFast), ot)
	want := gpumodel.ProjectTime(d, s.Flat())
	if got := ProjectTime(d, s); got != want {
		t.Fatalf("K=1 ProjectTime %g != flat %g", got, want)
	}
}

// TestProjectTimeChargesRemote checks the interconnect penalty is
// monotone: the same statistics cost more when lines are remote.
func TestProjectTimeChargesRemote(t *testing.T) {
	d := gpumodel.SimDeviceSmall().WithDevices(2)
	local := Stats{Devices: []DeviceStats{
		{Stats: cachesim.Stats{Accesses: 100, Hits: 50, Misses: 50, LineBytes: 128}},
		{Stats: cachesim.Stats{Accesses: 100, Hits: 50, Misses: 50, LineBytes: 128}},
	}}
	remote := Stats{Devices: []DeviceStats{
		{Stats: local.Devices[0].Stats, RemoteAccesses: 40, RemoteMisses: 40},
		{Stats: local.Devices[1].Stats, RemoteAccesses: 40, RemoteMisses: 40},
	}}
	tl, tr := ProjectTime(d, local), ProjectTime(d, remote)
	if !(tr > tl) {
		t.Fatalf("remote lines not charged: local %g, remote %g", tl, tr)
	}
	wantRatio := (float64(10*128) + d.RemotePenalty*float64(40*128)) / float64(50*128)
	if got := tr / tl; math.Abs(got-wantRatio) > 1e-12 {
		t.Fatalf("remote charge ratio %g, want %g", got, wantRatio)
	}
}

// TestImbalanceDetectsSkew pins the imbalance metric: all rows on one
// device of two must report imbalance ~2.
func TestImbalanceDetectsSkew(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 400, AvgDegree: 8}.Generate(5)
	owner := make([]int32, m.NumRows) // everything on device 0
	s := Simulate(testConfig(2), trace.SpMVCSROwned(m, owner, 128))
	if s.Devices[1].Accesses != 0 {
		t.Fatalf("idle device accessed memory: %+v", s.Devices[1])
	}
	if got := s.Imbalance(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("one-sided split imbalance %f, want 2", got)
	}
	balanced := Simulate(testConfig(2), trace.SpMVCSROwned(m, partition.RowBlocks(m.NumRows, 2), 128))
	if got := balanced.Imbalance(); got >= 2 {
		t.Fatalf("row-block split as imbalanced as one-sided: %f", got)
	}
}

// TestCommunityPartitionReducesRemote is the subsystem's reason to exist:
// on a planted-partition graph split by its own communities, remote
// traffic must be lower than under a community-oblivious contiguous
// split of the unreordered matrix.
func TestCommunityPartitionReducesRemote(t *testing.T) {
	planted := gen.PlantedPartition{Nodes: 8192, Communities: 32, AvgDegree: 12, Mu: 0.1}.Generate(11)
	// The generator lays communities out contiguously; scramble with a
	// fixed stride bijection so the baseline split is genuinely oblivious.
	scramble := make(sparse.Permutation, planted.NumRows)
	for v := range scramble {
		scramble[v] = int32((v * 509) % len(scramble))
	}
	m := planted.PermuteSymmetric(scramble)
	const k = 4
	line := int64(128)
	oblivious := Simulate(testConfig(k), trace.SpMVCSROwned(m, partition.RowBlocks(m.NumRows, k), line))
	part := partition.Partition(m, partition.Options{Parts: k})
	perm := partition.Order(part, k)
	pm := m.PermuteSymmetric(perm)
	aligned := Simulate(testConfig(k), trace.SpMVCSROwned(pm, partition.RowBlocks(pm.NumRows, k), line))
	if !(aligned.RemoteFraction() < oblivious.RemoteFraction()) {
		t.Fatalf("partition-aligned split does not reduce remote traffic: %f vs %f",
			aligned.RemoteFraction(), oblivious.RemoteFraction())
	}
}
