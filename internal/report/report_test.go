package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("short", "1.00x")
	tb.Add("a-much-longer-name", "12.34x")
	tb.Note("footnote %d", 7)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "12.34x") {
		t.Fatal("missing cells")
	}
	if !strings.Contains(out, "note: footnote 7") {
		t.Fatal("missing note")
	}
	// The value column must be right-aligned: "1.00x" should be preceded
	// by spaces padding it to the width of "12.34x".
	lines := strings.Split(out, "\n")
	var shortLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "short") {
			shortLine = l
		}
	}
	if !strings.HasSuffix(shortLine, " 1.00x") {
		t.Fatalf("value column not right-aligned: %q", shortLine)
	}
}

func TestRenderCSVEscapes(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(`has,comma`, `has"quote`)
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRenderTSV(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("row-one", "1.00x")
	tb.Note("footnote %d", 7)
	var buf bytes.Buffer
	if err := tb.RenderTSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# Demo\nname\tvalue\nrow-one\t1.00x\n# note: footnote 7\n"
	if buf.String() != want {
		t.Fatalf("TSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if X(1.536) != "1.54x" {
		t.Fatalf("X = %q", X(1.536))
	}
	if F(0.12345) != "0.123" {
		t.Fatalf("F = %q", F(0.12345))
	}
	if Pct(0.1637) != "16.37%" {
		t.Fatalf("Pct = %q", Pct(0.1637))
	}
	for v, want := range map[int64]string{
		512:           "512B",
		1536:          "1.5KB",
		3 << 20:       "3.0MB",
		5 << 30:       "5.0GB",
		1 << 42:       "4096.0GB",
		0:             "0B",
		2*1024 + 1024: "3.0KB",
	} {
		if got := Bytes(v); got != want {
			t.Fatalf("Bytes(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.Add("only-one")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only-one") {
		t.Fatal("short row dropped")
	}
}
