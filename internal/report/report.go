// Package report renders experiment results as aligned text tables and
// CSV, the output format of every figure/table reproduction binary.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New returns an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. The cell count should match the column count; short
// rows are padded when rendering.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				// Left-align the first (label) column.
				b.WriteString(cell + strings.Repeat(" ", width-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", width-len(cell)) + cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderTSV writes the table as tab-separated values with the title and
// notes as '#'-prefixed lines. This is the golden-file format: stable
// under column-width changes, trivially diffable, and it captures the
// notes (which carry the computed summary statistics) alongside the grid.
func (t *Table) RenderTSV(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# " + t.Title + "\n")
	}
	b.WriteString(strings.Join(t.Columns, "\t") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t") + "\n")
	}
	for _, n := range t.Notes {
		b.WriteString("# note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// X formats a ratio the way the paper prints them: "1.54x".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// F formats a float with 3 decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a fraction as a percentage with 2 decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Bytes formats a byte count with a binary-unit suffix ("1.5KB",
// "12.3MB"), keeping golden tables readable across corpus scales.
func Bytes(v int64) string {
	f := float64(v)
	for _, unit := range []string{"B", "KB", "MB", "GB"} {
		if f < 1024 || unit == "GB" {
			if unit == "B" {
				return fmt.Sprintf("%d%s", v, unit)
			}
			return fmt.Sprintf("%.1f%s", f, unit)
		}
		f /= 1024
	}
	return fmt.Sprintf("%d", v)
}
