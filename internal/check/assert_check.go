//go:build check

package check

import (
	"fmt"

	"repro/internal/sparse"
)

// Enabled reports whether the check build tag is active: assertions validate
// and panic instead of compiling to no-ops.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("check: assertion failed: " + fmt.Sprintf(format, args...))
	}
}

// AssertPermutation panics unless p is a bijection on [0, len(p)).
func AssertPermutation(p sparse.Permutation) {
	if err := ValidPermutation(p); err != nil {
		panic(err)
	}
}

// AssertCSR panics unless m satisfies the CSR structural contract.
func AssertCSR(m *sparse.CSR) {
	if err := ValidCSR(m); err != nil {
		panic(err)
	}
}
