//go:build !check

package check

import "repro/internal/sparse"

// Enabled reports whether the check build tag is active: assertions validate
// and panic instead of compiling to no-ops.
const Enabled = false

// Assert is a no-op without the check build tag.
func Assert(cond bool, format string, args ...any) {}

// AssertPermutation is a no-op without the check build tag.
func AssertPermutation(p sparse.Permutation) {}

// AssertCSR is a no-op without the check build tag.
func AssertCSR(m *sparse.CSR) {}
