package check

import (
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestValidPermutation(t *testing.T) {
	cases := []struct {
		name string
		p    sparse.Permutation
		ok   bool
	}{
		{"empty", sparse.Permutation{}, true},
		{"identity", sparse.Permutation{0, 1, 2, 3}, true},
		{"reversed", sparse.Permutation{3, 2, 1, 0}, true},
		{"duplicate", sparse.Permutation{0, 1, 1, 3}, false},
		{"out-of-range", sparse.Permutation{0, 1, 2, 4}, false},
		{"negative", sparse.Permutation{0, -1, 2, 3}, false},
	}
	for _, c := range cases {
		err := ValidPermutation(c.p)
		if (err == nil) != c.ok {
			t.Errorf("%s: ValidPermutation = %v, want ok=%v", c.name, err, c.ok)
		}
		// Must agree with the sparse package's own validator.
		if (c.p.Validate() == nil) != (err == nil) {
			t.Errorf("%s: check and sparse validators disagree", c.name)
		}
	}
}

func validMatrix() *sparse.CSR {
	return &sparse.CSR{
		NumRows:    3,
		NumCols:    3,
		RowOffsets: []int32{0, 2, 2, 4},
		ColIndices: []int32{0, 2, 1, 2},
		Values:     []float32{1, 2, 3, 4},
	}
}

func TestValidCSR(t *testing.T) {
	if err := ValidCSR(validMatrix()); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if err := ValidCSR(nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
	mutations := map[string]func(*sparse.CSR){
		"offsets-short":   func(m *sparse.CSR) { m.RowOffsets = m.RowOffsets[:3] },
		"offsets-nonzero": func(m *sparse.CSR) { m.RowOffsets[0] = 1 },
		"offsets-descend": func(m *sparse.CSR) { m.RowOffsets[1] = 3; m.RowOffsets[2] = 2 },
		"offsets-end":     func(m *sparse.CSR) { m.RowOffsets[3] = 3 },
		"col-negative":    func(m *sparse.CSR) { m.ColIndices[0] = -1 },
		"col-too-big":     func(m *sparse.CSR) { m.ColIndices[3] = 3 },
		"col-unsorted":    func(m *sparse.CSR) { m.ColIndices[0], m.ColIndices[1] = 2, 0 },
		"col-duplicate":   func(m *sparse.CSR) { m.ColIndices[1] = 0 },
		"values-short":    func(m *sparse.CSR) { m.Values = m.Values[:3] },
	}
	for name, mutate := range mutations {
		m := validMatrix()
		mutate(m)
		if err := ValidCSR(m); err == nil {
			t.Errorf("%s: corrupted matrix accepted", name)
		}
		if (m.Validate() == nil) != false {
			t.Errorf("%s: sparse validator disagrees (accepted corruption)", name)
		}
	}
}

func TestSafeInt32(t *testing.T) {
	if got := SafeInt32(1 << 20); got != 1<<20 {
		t.Fatalf("SafeInt32(1<<20) = %d", got)
	}
	if !FitsInt32(1<<31-1) || FitsInt32(1<<31) {
		t.Fatal("FitsInt32 boundary wrong")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SafeInt32 did not panic on overflow")
		}
		if !strings.Contains(r.(string), "overflows int32") {
			t.Fatalf("unexpected panic message %v", r)
		}
	}()
	SafeInt32(1 << 31)
}

// TestAssertGating verifies the build-tag contract: with -tags check the
// Assert helpers panic on violations, without it they are no-ops.
func TestAssertGating(t *testing.T) {
	bad := sparse.Permutation{0, 0}
	if !Enabled {
		AssertPermutation(bad) // must not panic
		Assert(false, "ignored")
		AssertCSR(&sparse.CSR{NumRows: -1})
		return
	}
	for name, fn := range map[string]func(){
		"perm":   func() { AssertPermutation(bad) },
		"assert": func() { Assert(false, "boom %d", 1) },
		"csr":    func() { AssertCSR(&sparse.CSR{NumRows: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: assertion did not panic under -tags check", name)
				}
			}()
			fn()
		}()
	}
}

func TestPermAndCSRPassThrough(t *testing.T) {
	p := sparse.Permutation{1, 0}
	if got := Perm(p); &got[0] != &p[0] {
		t.Fatal("Perm did not return its argument")
	}
	m := validMatrix()
	if got := CSR(m); got != m {
		t.Fatal("CSR did not return its argument")
	}
}
