// Package check centralizes the machine-checked invariants the rest of the
// repository relies on: permutations must be bijections, CSR matrices must
// satisfy the structural contract every kernel assumes, and int→int32 index
// downcasts must not overflow near 2³¹ nonzeros.
//
// The Valid* functions are deliberately independent reimplementations of the
// Validate methods in internal/sparse; the FuzzValidCSR differential fuzz
// target keeps the two in agreement, so a bug has to be introduced twice to
// go unnoticed.
//
// The Assert* functions compile to no-ops by default and to panicking
// validators under the `check` build tag (go test -tags check ./...). They
// are wired at the boundaries of internal/core, internal/reorder,
// internal/kernels, and internal/cachesim; the permreturn analyzer in
// tools/analyzers enforces that every exported permutation-returning
// function keeps its assertion.
package check

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// ValidPermutation returns an error unless p is a bijection on [0, len(p)).
func ValidPermutation(p sparse.Permutation) error {
	n := len(p)
	// from[v] records 1 + the position that claimed value v.
	from := make([]int32, n)
	for i, v := range p {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("check: permutation entry %d = %d outside [0,%d)", i, v, n)
		}
		if prior := from[v]; prior != 0 {
			return fmt.Errorf("check: permutation positions %d and %d both map to %d", prior-1, i, v)
		}
		from[v] = int32(i) + 1
	}
	return nil
}

// ValidCSR returns an error unless m satisfies the CSR structural contract:
// consistent slice lengths, monotone row offsets starting at 0, and
// in-bounds, strictly increasing column indices within every row.
func ValidCSR(m *sparse.CSR) error {
	if m == nil {
		return fmt.Errorf("check: nil CSR")
	}
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("check: negative CSR dimensions %dx%d", m.NumRows, m.NumCols)
	}
	if len(m.RowOffsets) != int(m.NumRows)+1 {
		return fmt.Errorf("check: RowOffsets has %d entries for %d rows", len(m.RowOffsets), m.NumRows)
	}
	if m.RowOffsets[0] != 0 {
		return fmt.Errorf("check: RowOffsets begins at %d, want 0", m.RowOffsets[0])
	}
	if len(m.Values) != len(m.ColIndices) {
		return fmt.Errorf("check: %d values for %d column indices", len(m.Values), len(m.ColIndices))
	}
	nnz := len(m.ColIndices)
	if int(m.RowOffsets[m.NumRows]) != nnz {
		return fmt.Errorf("check: RowOffsets ends at %d, want nnz %d", m.RowOffsets[m.NumRows], nnz)
	}
	for r := int32(0); r < m.NumRows; r++ {
		lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
		if lo > hi {
			return fmt.Errorf("check: RowOffsets not monotone at row %d (%d > %d)", r, lo, hi)
		}
		if lo < 0 || int(hi) > nnz {
			return fmt.Errorf("check: row %d spans [%d,%d) outside [0,%d)", r, lo, hi, nnz)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := m.ColIndices[k]
			if c < 0 || c >= m.NumCols {
				return fmt.Errorf("check: column %d out of range [0,%d) in row %d", c, m.NumCols, r)
			}
			if c <= prev {
				return fmt.Errorf("check: row %d not strictly sorted at offset %d (%d after %d)", r, k, c, prev)
			}
			prev = c
		}
	}
	return nil
}

// FitsInt32 reports whether v is representable as an int32.
func FitsInt32(v int) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// SafeInt32 converts v to int32, panicking instead of silently wrapping when
// the value does not fit. Index downcasts on nnz-sized quantities must go
// through this (or an equivalent guard); the uncheckedcast analyzer flags
// raw int32(len(...)) conversions.
func SafeInt32(v int) int32 {
	if !FitsInt32(v) {
		panic(fmt.Sprintf("check: value %d overflows int32", v))
	}
	return int32(v)
}

// Perm returns p unchanged after asserting (under the check build tag) that
// it is a valid permutation. It exists so permutation-producing return
// statements can stay single-expression: return check.Perm(...).
func Perm(p sparse.Permutation) sparse.Permutation {
	AssertPermutation(p)
	return p
}

// CSR returns m unchanged after asserting (under the check build tag) that
// it satisfies the CSR structural contract.
func CSR(m *sparse.CSR) *sparse.CSR {
	AssertCSR(m)
	return m
}
