package check

import (
	"encoding/binary"
	"testing"

	"repro/internal/sparse"
)

// buildFuzzCSR decodes an arbitrary byte string into a CSR-shaped struct
// without sanitizing it: the whole point is to hand both validators matrices
// that may violate any invariant.
func buildFuzzCSR(data []byte) *sparse.CSR {
	next := func() int32 {
		if len(data) == 0 {
			return 0
		}
		if len(data) < 4 {
			v := int32(int8(data[0]))
			data = nil
			return v
		}
		v := int32(binary.LittleEndian.Uint32(data[:4]))
		data = data[4:]
		return v
	}
	m := &sparse.CSR{
		NumRows: next() % 16,
		NumCols: next() % 16,
	}
	nOff := int(next()%24) + 1
	for i := 0; i < nOff; i++ {
		m.RowOffsets = append(m.RowOffsets, next()%32)
	}
	nCol := int(next() % 32)
	for i := 0; i < nCol; i++ {
		m.ColIndices = append(m.ColIndices, next()%20)
		m.Values = append(m.Values, float32(next()))
	}
	return m
}

// FuzzValidCSR is a differential fuzz target: check.ValidCSR and
// sparse.CSR.Validate are independent implementations of the same contract,
// so they must agree on every input — and neither may panic.
func FuzzValidCSR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	// Regression seed: a locally monotone offset prefix pointing past nnz
	// used to make sparse.Validate slice out of bounds.
	seed := make([]byte, 0, 64)
	add := func(v int32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		seed = append(seed, b[:]...)
	}
	add(3) // rows
	add(3) // cols
	add(4) // offsets count
	add(0) // offsets...
	add(5)
	add(2)
	add(2)
	add(2) // col count
	add(0)
	add(1)
	add(1)
	add(1)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := buildFuzzCSR(data)
		checkErr := ValidCSR(m)
		sparseErr := m.Validate()
		if (checkErr == nil) != (sparseErr == nil) {
			t.Fatalf("validators disagree: check=%v sparse=%v on %+v", checkErr, sparseErr, m)
		}
	})
}

// FuzzValidPermutation differentially fuzzes the two permutation validators.
func FuzzValidPermutation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		p := make(sparse.Permutation, len(data))
		for i, b := range data {
			p[i] = int32(int8(b))
		}
		checkErr := ValidPermutation(p)
		sparseErr := p.Validate()
		if (checkErr == nil) != (sparseErr == nil) {
			t.Fatalf("validators disagree: check=%v sparse=%v on %v", checkErr, sparseErr, p)
		}
	})
}
